//===- alloc/CoalescingAllocator.cpp - Boundary-tag machinery -------------===//

#include "alloc/CoalescingAllocator.h"

#include <cassert>

using namespace allocsim;

namespace {

/// sbrk granularity for heap expansion.
constexpr uint32_t ExpandChunkBytes = 4096;

/// Value of a guard word: size 0, allocated.
constexpr uint32_t GuardTag = 1;

} // namespace

CoalescingAllocator::CoalescingAllocator(SimHeap &AllocHeap,
                                         CostModel &AllocCost)
    : Allocator(AllocHeap, AllocCost) {}

void CoalescingAllocator::onUnlinked(Addr Block, Addr Next) {
  (void)Block;
  (void)Next;
}

Addr CoalescingAllocator::makeSentinel() {
  Addr Node = Heap.sbrk(12);
  // Empty circular list: the sentinel points at itself. Untraced: this is
  // load-time initialization, not program execution.
  Heap.poke32(Node + 4, Node);
  Heap.poke32(Node + 8, Node);
  Sentinels.push_back(Node);
  return Node;
}

void CoalescingAllocator::onShadowAttached() {
  for (Addr Node : Sentinels)
    noteMetadata(Node, 12);
}

void CoalescingAllocator::onTelemetryAttached() {
  SplitsProbe = counterProbe("splits");
  CoalescesProbe = counterProbe("coalesces");
  TagTouchesProbe = counterProbe("tag_touches");
  ExpandsProbe = counterProbe("heap_expands");
  ExpandBytesProbe = counterProbe("heap_expand_bytes");
}

Addr CoalescingAllocator::unlinkBlock(Addr Block) {
  Addr Next = load(Block + 4);
  Addr Prev = load(Block + 8);
  store(Prev + 4, Next);
  store(Next + 8, Prev);
  onUnlinked(Block, Next);
  return Next;
}

void CoalescingAllocator::linkAfter(Addr Node, Addr Block) {
  Addr Next = load(Node + 4);
  store(Block + 4, Next);
  store(Block + 8, Node);
  store(Node + 4, Block);
  store(Next + 8, Block);
}

void CoalescingAllocator::writeTags(Addr Block, uint32_t Size,
                                    bool Allocated) {
  assert(Size >= MinBlockBytes && (Size & 3) == 0 && "malformed block size");
  uint32_t Tag = Size | (Allocated ? 1u : 0u);
  if (TagTouchesProbe)
    TagTouchesProbe->add(2);
  store(Block, Tag);
  store(Block + Size - 4, Tag);
}

Addr CoalescingAllocator::doMalloc(uint32_t Size) {
  charge(callOverhead());
  uint32_t Need = blockBytesFor(Size);

  auto [Block, BlockSize] = findFit(Need);
  if (Block == 0) {
    if (!expandHeap(Need))
      return 0; // OOM: nothing was carved, the free structure is untouched.
    std::tie(Block, BlockSize) = findFit(Need);
    assert(Block != 0 && "expansion did not produce a fitting block");
  }
  return allocateFrom(Block, BlockSize, Need);
}

Addr CoalescingAllocator::allocateFrom(Addr Block, uint32_t BlockSize,
                                       uint32_t Need) {
  assert(BlockSize >= Need && "fit is too small");
  unlinkBlock(Block);

  if (BlockSize - Need >= minSplitBytes()) {
    // Split: the tail becomes a new free block.
    Addr Remainder = Block + Need;
    uint32_t RemainderSize = BlockSize - Need;
    writeTags(Remainder, RemainderSize, /*Allocated=*/false);
    insertFree(Remainder, RemainderSize);
    charge(4);
    if (SplitsProbe)
      SplitsProbe->add();
  } else {
    Need = BlockSize;
  }
  writeTags(Block, Need, /*Allocated=*/true);
  return Block + 4;
}

void CoalescingAllocator::doFree(Addr Ptr) {
  charge(callOverhead());
  Addr Block = Ptr - 4;
  uint32_t Tag = readHeader(Block);
  assert(tagAllocated(Tag) && "freeing a non-allocated block");
  uint32_t Size = tagSize(Tag);

  // Coalesce with the following block if it is free. Fencepost guards
  // (allocated, size 0) stop this at region ends.
  uint32_t NextTag = readHeader(Block + Size);
  if (!tagAllocated(NextTag)) {
    Addr NextBlock = Block + Size;
    unlinkBlock(NextBlock);
    Size += tagSize(NextTag);
    charge(2);
    if (CoalescesProbe)
      CoalescesProbe->add();
  }

  // Coalesce with the preceding block if it is free.
  uint32_t PrevFooter = readFooterBefore(Block);
  if (!tagAllocated(PrevFooter)) {
    uint32_t PrevSize = tagSize(PrevFooter);
    assert(PrevSize >= MinBlockBytes && "corrupt predecessor footer");
    Addr PrevBlock = Block - PrevSize;
    unlinkBlock(PrevBlock);
    Block = PrevBlock;
    Size += PrevSize;
    charge(2);
    if (CoalescesProbe)
      CoalescesProbe->add();
  }

  writeTags(Block, Size, /*Allocated=*/false);
  insertFree(Block, Size);
}

bool CoalescingAllocator::expandHeap(uint32_t Need) {
  // Guard words cost 8 bytes per region.
  uint32_t Chunk = Need + 8;
  Chunk = (Chunk + ExpandChunkBytes - 1) & ~(ExpandChunkBytes - 1);
  charge(24); // sbrk call overhead.
  Addr Region = 0;
  if (!Heap.trySbrk(Chunk, Region))
    return false;
  if (ExpandsProbe) {
    ExpandsProbe->add();
    ExpandBytesProbe->add(Chunk);
  }

  // Start guard acts as an allocated footer for the first block; end guard
  // as an allocated header after the last block.
  store(Region, GuardTag);
  store(Region + Chunk - 4, GuardTag);

  Addr Block = Region + 4;
  uint32_t Size = Chunk - 8;
  writeTags(Block, Size, /*Allocated=*/false);
  insertFree(Block, Size);
  return true;
}
