//===- alloc/BitmapFit.cpp - Cache-line bitmap-fit allocator --------------===//

#include "alloc/BitmapFit.h"

#include <bit>
#include <cassert>

using namespace allocsim;

BitmapFit::BitmapFit(SimHeap &AllocHeap, CostModel &AllocCost)
    : Allocator(AllocHeap, AllocCost), General(AllocHeap, AllocCost) {
  // Static area: bucket slab-list heads (sbrk memory is zero-filled, so
  // every list starts empty) and the initial slab map, all carved with the
  // fatal sbrk before any FaultLab soft limit applies — a capacity-0 OOM
  // sweep must see construction succeed and every malloc fail.
  BucketHeads = Heap.sbrk(4 * NumBuckets);
  MapCapacity = 64;
  MapAddr = Heap.sbrk(4 * MapCapacity);
}

bool BitmapFit::growMap(uint32_t MinSlabs) {
  uint32_t NewCapacity = MapCapacity * 2;
  if (NewCapacity < MinSlabs + 64)
    NewCapacity = MinSlabs + 64;

  charge(24); // realloc bookkeeping + sbrk overhead.
  Addr NewMap = 0;
  if (!Heap.trySbrk(4 * NewCapacity, NewMap))
    return false;
  if (MapGrowsProbe)
    MapGrowsProbe->add();

  // Copy live entries; the realloc-and-copy is real traffic, like
  // GnuLocal's descriptor table. New entries read as sbrk's zero fill
  // (= "not a slab"). The old map's words are simply abandoned.
  for (uint32_t I = 0; I != MapCapacity; ++I)
    store(NewMap + 4 * I, load(MapAddr + 4 * I));
  charge(2 * MapCapacity);

  MapAddr = NewMap;
  MapCapacity = NewCapacity;
  // Keep the shadow's metadata annotation covering the zero-filled tail
  // that the copy loop's stores did not touch (no-op when no shadow).
  noteMetadata(MapAddr, 4 * MapCapacity);
  return true;
}

Addr BitmapFit::newSlab(unsigned Bucket) {
  for (;;) {
    // Align the break to a slab boundary; the padding bytes are dead space
    // between regions, never handed out.
    uint32_t Offset = (Heap.brk() - Heap.base()) & (SlabBytes - 1);
    uint32_t Pad = Offset == 0 ? 0 : SlabBytes - Offset;
    uint32_t Index = slabIndexOf(Heap.brk() + Pad);

    if (Index >= MapCapacity) {
      // Growing the map moves the break; retry the alignment math.
      if (!growMap(Index + 1))
        return 0;
      continue;
    }

    charge(24); // sbrk overhead.
    Addr Region = 0;
    if (!Heap.trySbrk(Pad + SlabBytes, Region))
      return 0;
    Addr Slab = Region + Pad;
    assert(slabIndexOf(Slab) == Index && "slab alignment drifted");
    if (SlabCarvesProbe)
      SlabCarvesProbe->add();

    // Register, then initialize the header line and link at the bucket
    // list head. All slots free: bitmap zero except the permanent 1s past
    // the last real slot, which the word scan must never pick.
    store(MapAddr + 4 * Index, Bucket + 1);
    store(Slab + 0, slabHeaderWord(Bucket));
    store(Slab + 4, 0);
    uint32_t Slots = slotsPerSlab(Bucket);
    for (unsigned W = 0; W != BitmapWords; ++W) {
      uint32_t FirstBit = 32 * W;
      uint32_t Word;
      if (Slots >= FirstBit + 32)
        Word = 0;
      else if (Slots <= FirstBit)
        Word = ~0u;
      else
        Word = ~((1u << (Slots - FirstBit)) - 1);
      store(Slab + 16 + 4 * W, Word);
    }
    charge(8);
    Addr Head = load(bucketHeadSlot(Bucket));
    store(Slab + 8, Head);
    store(Slab + 12, 0);
    store(bucketHeadSlot(Bucket), Slab);
    return Slab;
  }
}

Addr BitmapFit::mallocSmall(unsigned Bucket) {
  // First slab of the bucket with a free slot; the walk touches only slab
  // header lines.
  uint32_t Slots = slotsPerSlab(Bucket);
  uint32_t Used = 0;
  Addr Slab = load(bucketHeadSlot(Bucket));
  while (Slab != 0) {
    ++SlabsExamined;
    charge(2);
    Used = load(Slab + 4);
    if (Used < Slots)
      break;
    Slab = load(Slab + 8);
  }
  if (Slab == 0) {
    Slab = newSlab(Bucket);
    if (Slab == 0)
      return 0; // OOM: lists, map and bitmaps are untouched.
    Used = 0;
  }

  // Word-at-a-time scan for the first word with a clear bit; the lowest
  // clear bit of that word is the lowest free slot of the slab.
  unsigned W = 0;
  uint32_t Word = 0;
  for (;; ++W) {
    assert(W != BitmapWords && "used count says free but bitmap is full");
    if (ScanWordsProbe)
      ScanWordsProbe->add();
    Word = load(Slab + 16 + 4 * W);
    if (Word != ~0u)
      break;
  }
  charge(3); // find-first-zero.
  unsigned Bit = static_cast<unsigned>(std::countr_one(Word));
  uint32_t Slot = 32 * W + Bit;
  assert(Slot < Slots && "scan picked a nonexistent slot");
  store(Slab + 16 + 4 * W, Word | (1u << Bit));
  store(Slab + 4, Used + 1);
  charge(2);
  return Slab + SlabHeaderBytes + Slot * slotBytes(Bucket);
}

Addr BitmapFit::doMalloc(uint32_t Size) {
  if (Size > MaxSingleBytes) {
    if (ClassMissesProbe)
      ClassMissesProbe->add();
    charge(4); // dispatch test.
    return General.malloc(Size);
  }
  charge(6); // call overhead + line rounding.
  unsigned Bucket = (Size + LineBytes - 1) / LineBytes - 1;
  if (ClassHitsProbe)
    ClassHitsProbe->add();
  if (ClassIndexHist)
    ClassIndexHist->record(Bucket);
  return mallocSmall(Bucket);
}

void BitmapFit::doFree(Addr Ptr) {
  charge(6); // slab-index math + map probe.
  uint32_t Index = slabIndexOf(Ptr);
  uint32_t Entry = Index < MapCapacity ? load(MapAddr + 4 * Index) : 0;
  if (Entry == 0) {
    General.free(Ptr);
    return;
  }

  unsigned Bucket = Entry - 1;
  assert(Bucket < NumBuckets && "corrupt slab-map entry");
  Addr Slab = slabAddr(Index);
  uint32_t Offset = Ptr - Slab - SlabHeaderBytes;
  assert(Offset % slotBytes(Bucket) == 0 && "free of misaligned slab slot");
  uint32_t Slot = Offset / slotBytes(Bucket);
  unsigned W = Slot >> 5;
  unsigned Bit = Slot & 31;
  uint32_t Word = load(Slab + 16 + 4 * W);
  assert(((Word >> Bit) & 1) != 0 && "freeing an already-free slot");
  store(Slab + 16 + 4 * W, Word & ~(1u << Bit));
  uint32_t Used = load(Slab + 4);
  assert(Used > 0 && "used count underflow");
  store(Slab + 4, Used - 1);
  charge(4);
  // Slabs are never returned to the pool: the map stays valid for the
  // slab's whole life and a refilled bucket reuses its lowest free slots.
}
