//===- alloc/FirstFit.cpp - Knuth first-fit allocator ---------------------===//

#include "alloc/FirstFit.h"

#include "support/Error.h"

using namespace allocsim;

FirstFit::FirstFit(SimHeap &AllocHeap, CostModel &AllocCost,
                   FirstFitPolicy FitPolicy)
    : CoalescingAllocator(AllocHeap, AllocCost), Policy(FitPolicy) {
  Sentinel = makeSentinel();
  Rover = Sentinel;
}

std::pair<Addr, uint32_t> FirstFit::findFit(uint32_t Need) {
  // Scan the circular list starting at the rover (which stays pinned to
  // the sentinel under the non-roving policies); stop after one full lap.
  Addr Start = Rover;
  Addr Node = Start;
  do {
    if (Node != Sentinel) {
      ++BlocksExamined;
      charge(2); // compare + branch per candidate.
      uint32_t Tag = readHeader(Node);
      assert(!tagAllocated(Tag) && "allocated block on freelist");
      uint32_t Size = tagSize(Tag);
      if (Size >= Need) {
        // Next search resumes here under the roving discipline.
        if (Policy == FirstFitPolicy::Roving)
          Rover = Node;
        return {Node, Size};
      }
    }
    Node = load(Node + 4);
  } while (Node != Start);
  return {0, 0};
}

void FirstFit::insertFree(Addr Block, uint32_t Size) {
  (void)Size;
  switch (Policy) {
  case FirstFitPolicy::Roving:
    // Freed and split blocks enter the list at the roving pointer.
    assert(Block != Rover && "inserting a block that is already the rover");
    linkAfter(Rover, Block);
    return;
  case FirstFitPolicy::Lifo:
    linkAfter(Sentinel, Block);
    return;
  case FirstFitPolicy::AddressOrdered: {
    // Walk to the last node below Block; the traversal is the CPU and
    // locality cost the paper ascribes to sorted freelists.
    Addr Prev = Sentinel;
    for (Addr Node = load(Sentinel + 4);
         Node != Sentinel && Node < Block; Node = load(Node + 4)) {
      charge(2);
      Prev = Node;
    }
    linkAfter(Prev, Block);
    return;
  }
  }
  unreachable("unknown first-fit policy");
}

void FirstFit::onUnlinked(Addr Block, Addr Next) {
  // Keep the rover off unlinked blocks.
  if (Rover == Block)
    Rover = Next;
}

