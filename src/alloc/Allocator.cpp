//===- alloc/Allocator.cpp - Dynamic storage allocator interface ----------===//

#include "alloc/Allocator.h"

#include "alloc/BestFit.h"
#include "alloc/BitmapFit.h"
#include "alloc/Bsd.h"
#include "alloc/FirstFit.h"
#include "alloc/GnuGxx.h"
#include "alloc/GnuLocal.h"
#include "alloc/QuickFit.h"
#include "alloc/SpaceFit.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace allocsim;

Allocator::Allocator(SimHeap &AllocHeap, CostModel &AllocCost)
    : Heap(AllocHeap), Cost(AllocCost) {}

Allocator::~Allocator() = default;

const char *allocsim::allocatorKindName(AllocatorKind Kind) {
  switch (Kind) {
  case AllocatorKind::FirstFit:
    return "FirstFit";
  case AllocatorKind::GnuGxx:
    return "GnuG++";
  case AllocatorKind::Bsd:
    return "BSD";
  case AllocatorKind::GnuLocal:
    return "GnuLocal";
  case AllocatorKind::QuickFit:
    return "QuickFit";
  case AllocatorKind::Custom:
    return "Custom";
  case AllocatorKind::BestFit:
    return "BestFit";
  case AllocatorKind::BitmapFit:
    return "BitmapFit";
  case AllocatorKind::SpaceFit:
    return "SpaceFit";
  }
  unreachable("unknown allocator kind");
}

bool allocsim::tryParseAllocatorKind(const std::string &Name,
                                     AllocatorKind &Kind) {
  std::string Lower = Name;
  std::transform(Lower.begin(), Lower.end(), Lower.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  if (Lower == "firstfit" || Lower == "first-fit")
    Kind = AllocatorKind::FirstFit;
  else if (Lower == "gnug++" || Lower == "gnugxx" || Lower == "g++")
    Kind = AllocatorKind::GnuGxx;
  else if (Lower == "bsd")
    Kind = AllocatorKind::Bsd;
  else if (Lower == "gnulocal" || Lower == "gnu-local")
    Kind = AllocatorKind::GnuLocal;
  else if (Lower == "quickfit" || Lower == "quick-fit")
    Kind = AllocatorKind::QuickFit;
  else if (Lower == "custom")
    Kind = AllocatorKind::Custom;
  else if (Lower == "bestfit" || Lower == "best-fit")
    Kind = AllocatorKind::BestFit;
  else if (Lower == "bitmapfit" || Lower == "bitmap-fit")
    Kind = AllocatorKind::BitmapFit;
  else if (Lower == "spacefit" || Lower == "space-fit")
    Kind = AllocatorKind::SpaceFit;
  else
    return false;
  return true;
}

AllocatorKind allocsim::parseAllocatorKind(const std::string &Name) {
  AllocatorKind Kind;
  if (!tryParseAllocatorKind(Name, Kind))
    reportFatalError("unknown allocator name '" + Name + "'");
  return Kind;
}

void Allocator::attachTelemetry(Telemetry *Registry,
                                const std::string &Prefix) {
  Telem = Registry;
  TelemPrefix = Prefix;
  MallocsProbe = counterProbe("mallocs");
  FreesProbe = counterProbe("frees");
  SearchLenHist = histogramProbe("search_len");
  RequestBytesHist = histogramProbe("request_bytes");
  onTelemetryAttached();
}

Addr Allocator::malloc(uint32_t Size) {
  assert(Size > 0 && "malloc of zero bytes");
  ++Stats.MallocCalls;
  Stats.BytesRequested += Size;
  if (MallocsProbe)
    MallocsProbe->add();
  if (RequestBytesHist)
    RequestBytesHist->record(Size);
  uint64_t SearchedBefore = SearchLenHist ? blocksSearched() : 0;

  Addr Ptr = doMalloc(Size);
  if (SearchLenHist)
    SearchLenHist->record(blocksSearched() - SearchedBefore);

  if (Ptr == 0) {
    // Propagated OOM (a growth path's trySbrk was denied): the request
    // changes no live state and the caller gets the classic null return.
    // The allocators fail before mutating, so the heap structures the
    // invariant walkers see are exactly the pre-call ones.
    ++Stats.FailedMallocs;
    return 0;
  }

  assert((Ptr & 3) == 0 && "allocator returned misaligned object");
  assert(Heap.contains(Ptr, Size) && "allocator returned bad region");
  [[maybe_unused]] bool Inserted = LiveObjects.emplace(Ptr, Size).second;
  assert(Inserted && "allocator returned an address twice");
  if (Shadow)
    Shadow->noteUserRange(*this, Ptr, Size);

  Stats.LiveBytes += Size;
  Stats.MaxLiveBytes = std::max(Stats.MaxLiveBytes, Stats.LiveBytes);
  ++Stats.LiveObjects;
  Stats.MaxLiveObjects = std::max(Stats.MaxLiveObjects, Stats.LiveObjects);
  return Ptr;
}

void Allocator::free(Addr Ptr) {
  auto It = LiveObjects.find(Ptr);
  if (It == LiveObjects.end()) {
    // Under HeapCheck the double/invalid free becomes a recorded violation
    // with a precise diagnostic (and the free is dropped, so the walk that
    // follows sees an uncorrupted heap); without it, it stays fatal.
    if (Shadow && Shadow->noteInvalidFree(*this, Ptr))
      return;
    reportFatalError("free of unknown or already-freed address");
  }
  uint32_t Size = It->second;
  Stats.LiveBytes -= Size;
  --Stats.LiveObjects;
  LiveObjects.erase(It);
  ++Stats.FreeCalls;
  if (FreesProbe)
    FreesProbe->add();
  if (Shadow)
    Shadow->noteFreedRange(*this, Ptr, Size);

  doFree(Ptr);
}

uint32_t Allocator::objectSize(Addr Ptr) const {
  auto It = LiveObjects.find(Ptr);
  if (It == LiveObjects.end())
    reportFatalError("objectSize of unknown address");
  return It->second;
}

std::unique_ptr<Allocator>
allocsim::createAllocator(AllocatorKind Kind, SimHeap &Heap, CostModel &Cost) {
  switch (Kind) {
  case AllocatorKind::FirstFit:
    return std::make_unique<FirstFit>(Heap, Cost);
  case AllocatorKind::GnuGxx:
    return std::make_unique<GnuGxx>(Heap, Cost);
  case AllocatorKind::Bsd:
    return std::make_unique<Bsd>(Heap, Cost);
  case AllocatorKind::GnuLocal:
    return std::make_unique<GnuLocal>(Heap, Cost);
  case AllocatorKind::QuickFit:
    return std::make_unique<QuickFit>(Heap, Cost);
  case AllocatorKind::Custom:
    reportFatalError(
        "Custom allocator needs a size profile; construct CustomAlloc "
        "directly");
  case AllocatorKind::BestFit:
    return std::make_unique<BestFit>(Heap, Cost);
  case AllocatorKind::BitmapFit:
    return std::make_unique<BitmapFit>(Heap, Cost);
  case AllocatorKind::SpaceFit:
    return std::make_unique<SpaceFit>(Heap, Cost);
  }
  unreachable("unknown allocator kind");
}
