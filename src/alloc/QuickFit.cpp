//===- alloc/QuickFit.cpp - Weinstock/Wulf QuickFit allocator -------------===//

#include "alloc/QuickFit.h"

#include <cassert>

using namespace allocsim;

QuickFit::QuickFit(SimHeap &AllocHeap, CostModel &AllocCost)
    : Allocator(AllocHeap, AllocCost), General(AllocHeap, AllocCost) {
  FastLists = Heap.sbrk(4 * NumFastLists);
}

Addr QuickFit::doMalloc(uint32_t Size) {
  if (Size > MaxFastBytes) {
    ++SlowMallocs;
    if (ClassMissesProbe)
      ClassMissesProbe->add();
    charge(4); // dispatch test.
    return General.malloc(Size);
  }

  ++FastMallocs;
  charge(6); // call overhead + index computation.
  unsigned ClassIndex = (Size + 3) / 4 - 1;
  if (ClassHitsProbe)
    ClassHitsProbe->add();
  if (ClassIndexHist)
    ClassIndexHist->record(ClassIndex);

  Addr Head = load(freelistSlot(ClassIndex));
  if (Head == 0)
    return carveFast(ClassIndex);

  // Pop: the free block's link lives in its (word-sized) payload.
  Addr Next = load(Head + 4);
  store(freelistSlot(ClassIndex), Next);
  store(Head, fastHeader(ClassIndex));
  return Head + 4;
}

Addr QuickFit::carveFast(unsigned ClassIndex) {
  // Block = header word + payload.
  uint32_t BlockBytes = (ClassIndex + 1) * 4 + 4;
  if (TailPtr + BlockBytes > TailEnd) {
    // A fresh tail region; the (sub-block-size) remainder of the old tail
    // is abandoned, as in the original working-region scheme.
    charge(24);
    Addr NewTail = 0;
    if (!Heap.trySbrk(4096, NewTail))
      return 0; // OOM: the exhausted tail region stays as it was.
    if (RefillsProbe)
      RefillsProbe->add();
    TailPtr = NewTail;
    TailEnd = TailPtr + 4096;
  }
  charge(4);
  Addr Block = TailPtr;
  TailPtr += BlockBytes;
  store(Block, fastHeader(ClassIndex));
  return Block + 4;
}

void QuickFit::doFree(Addr Ptr) {
  charge(4);
  uint32_t Header = load(Ptr - 4);
  if (!isFastHeader(Header)) {
    General.free(Ptr);
    return;
  }

  unsigned ClassIndex = Header >> 8;
  assert(ClassIndex < NumFastLists && "corrupt fast-block header");
  Addr Block = Ptr - 4;
  // LIFO push; the link reuses the payload word.
  Addr Head = load(freelistSlot(ClassIndex));
  store(Block + 4, Head);
  store(freelistSlot(ClassIndex), Block);
}
