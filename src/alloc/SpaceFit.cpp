//===- alloc/SpaceFit.cpp - Head-first best fit with space-fitting --------===//

#include "alloc/SpaceFit.h"

using namespace allocsim;

SpaceFit::SpaceFit(SimHeap &AllocHeap, CostModel &AllocCost)
    : CoalescingAllocator(AllocHeap, AllocCost) {
  Sentinel = makeSentinel();
}

void SpaceFit::onTelemetryAttached() {
  CoalescingAllocator::onTelemetryAttached();
  InsertWalkHist = histogramProbe("spacefit.search_len");
}

std::pair<Addr, uint32_t> SpaceFit::findFit(uint32_t Need) {
  // The list is sorted ascending by (size, address), so the first
  // sufficient node is the tightest fit; when the head itself fits, the
  // allocation is O(1).
  for (Addr Node = load(Sentinel + 4); Node != Sentinel;
       Node = load(Node + 4)) {
    ++BlocksExamined;
    charge(2); // compare against the request.
    uint32_t Tag = readHeader(Node);
    assert(!tagAllocated(Tag) && "allocated block on freelist");
    uint32_t Size = tagSize(Tag);
    if (Size >= Need)
      return {Node, Size};
  }
  return {0, 0};
}

void SpaceFit::insertFree(Addr Block, uint32_t Size) {
  // Ordered insert: walk to the last node that still sorts before the new
  // block. Ties break by address so equal-size runs stay address ordered
  // and the whole order is total (bit-identical at any job count).
  uint64_t Walked = 0;
  Addr Prev = Sentinel;
  for (Addr Node = load(Sentinel + 4); Node != Sentinel;
       Node = load(Node + 4)) {
    ++Walked;
    charge(3); // size compare + tie break.
    uint32_t NodeSize = tagSize(readHeader(Node));
    if (NodeSize > Size || (NodeSize == Size && Node > Block))
      break;
    Prev = Node;
  }
  if (InsertWalkHist)
    InsertWalkHist->record(Walked);
  linkAfter(Prev, Block);
}
