//===- alloc/BestFit.h - Best-fit sequential allocator ----------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Best fit, the other classic sequential-fit algorithm the paper's
/// conclusion names ("allocators based on sequential-fit methods, such as
/// first-fit, best-fit, etc, have poor reference locality"). The paper
/// measures only FIRSTFIT from this class; BestFit is provided as an
/// extension so that claim can be checked directly: it scans the *entire*
/// freelist on every allocation looking for the tightest fit, trading even
/// more search traffic for less splinter waste.
///
/// Identical block format and coalescing to FirstFit (boundary tags,
/// doubly-linked free list); only the search policy differs.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_ALLOC_BESTFIT_H
#define ALLOCSIM_ALLOC_BESTFIT_H

#include "alloc/CoalescingAllocator.h"

namespace allocsim {

/// Exhaustive best-fit over one freelist.
class BestFit final : public CoalescingAllocator {
public:
  BestFit(SimHeap &Heap, CostModel &Cost);

  /// Reported as FirstFit's kind sibling; BestFit is an extension beyond
  /// the paper's five, distinguishable by name().
  AllocatorKind kind() const override { return AllocatorKind::BestFit; }

  uint64_t blocksSearched() const override { return BlocksExamined; }

  /// Introspection for the HeapCheck invariant walker.
  Addr freelistSentinel() const { return Sentinel; }

private:
  std::pair<Addr, uint32_t> findFit(uint32_t Need) override;
  void insertFree(Addr Block, uint32_t Size) override;
  uint64_t callOverhead() const override { return 12; }
  uint32_t minSplitBytes() const override { return 24; }

  Addr Sentinel;
  uint64_t BlocksExamined = 0;
};

} // namespace allocsim

#endif // ALLOCSIM_ALLOC_BESTFIT_H
