//===- alloc/SizeClassMap.cpp - Size-class mapping policies ---------------===//

#include "alloc/SizeClassMap.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace allocsim;

SizeClassMap::SizeClassMap(std::vector<uint32_t> Sizes)
    : ClassSizes(std::move(Sizes)) {
  assert(!ClassSizes.empty() && "size-class map needs at least one class");
  assert(std::is_sorted(ClassSizes.begin(), ClassSizes.end()) &&
         "class sizes must ascend");
  for (uint32_t Size : ClassSizes) {
    assert(Size % 4 == 0 && Size > 0 && "class sizes must be word multiples");
    (void)Size;
  }
  MaxSize = ClassSizes.back();

  // Figure 9: table entry per word-granular size.
  TableBySizeWord.assign(MaxSize / 4 + 1, 0);
  uint32_t Class = 0;
  for (uint32_t Word = 1; Word <= MaxSize / 4; ++Word) {
    while (ClassSizes[Class] < Word * 4)
      ++Class;
    TableBySizeWord[Word] = Class;
  }
}

uint32_t SizeClassMap::classIndexFor(uint32_t Size) const {
  assert(Size >= 1 && Size <= MaxSize && "request outside map coverage");
  return TableBySizeWord[(Size + 3) / 4];
}

double SizeClassMap::expectedWaste(const Histogram &Profile) const {
  double Wasted = 0, Allocated = 0;
  for (const auto &[Size, Count] : Profile) {
    if (Size == 0 || Size > MaxSize)
      continue;
    double N = static_cast<double>(Count);
    uint32_t ClassBytes = classSize(classIndexFor(static_cast<uint32_t>(Size)));
    Wasted += N * static_cast<double>(ClassBytes - Size);
    Allocated += N * static_cast<double>(ClassBytes);
  }
  return Allocated == 0 ? 0.0 : Wasted / Allocated;
}

SizeClassMap SizeClassMap::powerOfTwo(uint32_t MaxSize) {
  assert(MaxSize >= 4 && "degenerate maximum size");
  std::vector<uint32_t> Sizes;
  for (uint32_t Size = 4; Size < MaxSize; Size *= 2)
    Sizes.push_back(Size);
  Sizes.push_back(MaxSize);
  return SizeClassMap(std::move(Sizes));
}

SizeClassMap SizeClassMap::wordMultiple(uint32_t Granule, uint32_t MaxSize) {
  assert(Granule % 4 == 0 && Granule > 0 && "granule must be a word multiple");
  assert(MaxSize % Granule == 0 && "max size must be a granule multiple");
  std::vector<uint32_t> Sizes;
  for (uint32_t Size = Granule; Size <= MaxSize; Size += Granule)
    Sizes.push_back(Size);
  return SizeClassMap(std::move(Sizes));
}

SizeClassMap SizeClassMap::boundedFragmentation(double MaxWaste,
                                                uint32_t MaxSize) {
  assert(MaxWaste > 0 && MaxWaste < 1 && "waste bound must be in (0, 1)");
  // Greedy: after class C the next class is the largest word multiple such
  // that the smallest (word-rounded) request it serves, C + 4, wastes at
  // most MaxWaste of it. At 25% this reproduces the paper's example:
  // requests of 12-16 bytes round to a 16-byte class.
  std::vector<uint32_t> Sizes;
  uint32_t Size = 4;
  while (Size < MaxSize) {
    Sizes.push_back(Size);
    auto Next = static_cast<uint32_t>(static_cast<double>(Size + 4) /
                                      (1.0 - MaxWaste));
    Next &= ~3u;
    if (Next <= Size)
      Next = Size + 4;
    Size = Next;
  }
  Sizes.push_back(MaxSize);
  return SizeClassMap(std::move(Sizes));
}

SizeClassMap SizeClassMap::fromProfile(const Histogram &Profile,
                                       size_t MaxExact, uint32_t MaxSize) {
  // Exact classes for the most frequent (word-rounded) request sizes.
  Histogram Rounded;
  for (const auto &[Size, Count] : Profile)
    if (Size >= 1 && Size <= MaxSize)
      Rounded.add((Size + 3) & ~3ull, Count);

  std::vector<uint32_t> Sizes;
  for (uint64_t Key : Rounded.topKeys(MaxExact))
    Sizes.push_back(static_cast<uint32_t>(Key));

  // Cover the rest of [4, MaxSize] with 25%-bounded filler classes.
  SizeClassMap Filler = boundedFragmentation(0.25, MaxSize);
  Sizes.insert(Sizes.end(), Filler.ClassSizes.begin(),
               Filler.ClassSizes.end());

  std::sort(Sizes.begin(), Sizes.end());
  Sizes.erase(std::unique(Sizes.begin(), Sizes.end()), Sizes.end());
  return SizeClassMap(std::move(Sizes));
}
