//===- alloc/Allocator.h - Dynamic storage allocator interface --*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic-storage-allocation (DSA) interface shared by the five
/// allocators the paper measures. Allocators live entirely inside a SimHeap:
/// free-list links, boundary tags and chunk headers are stored in simulated
/// memory through traced accessors, so every bookkeeping reference the 1993
/// implementations made shows up in the cache and page simulators at a
/// faithful address. Each traced reference and each explicitly charged
/// arithmetic step also adds to the CostModel's allocator instruction count
/// (the paper's Figure 1 metric).
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_ALLOC_ALLOCATOR_H
#define ALLOCSIM_ALLOC_ALLOCATOR_H

#include "check/HeapStateObserver.h"
#include "mem/SimHeap.h"
#include "metrics/CostModel.h"
#include "stats/Telemetry.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

namespace allocsim {

/// The allocator implementations the paper compares, plus the synthesized
/// CustomAlloc its conclusions advocate.
enum class AllocatorKind {
  FirstFit, ///< Knuth first fit, roving pointer, boundary tags, coalescing.
  GnuGxx,   ///< Doug Lea's segregated first fit (early G++ malloc).
  Bsd,      ///< Chris Kingsley's power-of-two segregated storage (4.2BSD).
  GnuLocal, ///< Mike Haertel's page-chunk GNU malloc.
  QuickFit, ///< Weinstock/Wulf exact-size fast lists + general backend.
  Custom,   ///< Profile-synthesized QuickFit-style allocator (Section 4.4).
  BestFit,  ///< Extension: exhaustive best fit (the paper's "best-fit, etc").
  BitmapFit, ///< Extension: cache-line bitmap fit (Matani & Menghani 2021).
  SpaceFit, ///< Extension: head-first best fit w/ space-fitting (Hakarsa 2024).
};

/// All paper allocators, in the paper's presentation order.
inline constexpr AllocatorKind PaperAllocators[] = {
    AllocatorKind::FirstFit, AllocatorKind::QuickFit, AllocatorKind::GnuGxx,
    AllocatorKind::Bsd, AllocatorKind::GnuLocal};

/// Short display name ("FirstFit", "BSD", ...).
const char *allocatorKindName(AllocatorKind Kind);

/// Parses a display name (case-insensitive); fatal error on unknown name.
AllocatorKind parseAllocatorKind(const std::string &Name);

/// Like parseAllocatorKind, but reports an unknown name by returning false
/// instead of dying (for tools that want to print a diagnostic and exit).
bool tryParseAllocatorKind(const std::string &Name, AllocatorKind &Kind);

/// Usage statistics every allocator tracks.
struct AllocatorStats {
  uint64_t MallocCalls = 0;
  uint64_t FreeCalls = 0;
  /// Sum of all requested sizes.
  uint64_t BytesRequested = 0;
  /// Requested bytes currently live.
  uint64_t LiveBytes = 0;
  /// High-water mark of LiveBytes.
  uint64_t MaxLiveBytes = 0;
  /// Objects currently live.
  uint64_t LiveObjects = 0;
  /// High-water mark of LiveObjects. Together with MaxLiveBytes this is the
  /// statically predictable part of memory pressure: TraceLint computes
  /// both from a script without simulating, and the cross-check test holds
  /// the simulator to the prediction bit-exactly.
  uint64_t MaxLiveObjects = 0;
  /// Calls that returned null because the heap capacity was exhausted
  /// (FaultLab `oom:after=` plans or an explicit SimHeap soft limit).
  /// Counted within MallocCalls; BytesRequested includes the failed
  /// request, the live counters do not.
  uint64_t FailedMallocs = 0;
};

/// Abstract allocator over a simulated heap.
class Allocator {
public:
  Allocator(SimHeap &Heap, CostModel &Cost);
  virtual ~Allocator();

  Allocator(const Allocator &) = delete;
  Allocator &operator=(const Allocator &) = delete;

  /// Allocates \p Size bytes (Size > 0); returns the simulated address of
  /// the object. The address is 4-byte aligned. Returns 0 — the classic
  /// null — when heap capacity is exhausted (a SimHeap soft limit denied
  /// the growth sbrk); a failed call leaves every heap structure and live
  /// counter untouched.
  Addr malloc(uint32_t Size);

  /// Releases an object previously returned by malloc. Passing any other
  /// address is a checked programming error.
  void free(Addr Ptr);

  virtual AllocatorKind kind() const = 0;
  const char *name() const { return allocatorKindName(kind()); }

  const AllocatorStats &stats() const { return Stats; }

  /// Free-structure nodes examined across all searches (0 for allocators
  /// that never search). The paper's explanation of sequential-fit cost.
  virtual uint64_t blocksSearched() const { return 0; }

  /// Bytes obtained from the operating system (sbrk), i.e. the paper's
  /// "Max. Heap Size" column; includes fragmentation and metadata.
  uint32_t heapBytes() const { return Heap.heapBytes(); }

  /// Requested size of the live object at \p Ptr; checked.
  uint32_t objectSize(Addr Ptr) const;

  /// The heap this allocator manages (read-only; invariant walkers use the
  /// untraced peek accessors through it).
  const SimHeap &heap() const { return Heap; }

  /// Attaches (or detaches, with nullptr) a HeapCheck state observer.
  /// malloc/free report user ranges automatically; subclasses additionally
  /// annotate statically carved metadata via onShadowAttached.
  void attachShadow(HeapStateObserver *Observer) {
    Shadow = Observer;
    if (Shadow)
      onShadowAttached();
  }

  /// Attaches (or detaches, with nullptr) a telemetry registry. Instrument
  /// names are "<Prefix>.<name>"; top-level allocators use the default,
  /// hybrid allocators forward to their backend with "<Prefix>.general" so
  /// delegated traffic stays distinguishable. The base wrapper maintains
  /// "<Prefix>.mallocs"/"<Prefix>.frees" counters and, at full level, a
  /// "<Prefix>.search_len" histogram of the per-malloc blocksSearched()
  /// delta (0 for non-searching paths — QuickFit's fast hits must show up
  /// as zero-length searches for mean search length to be comparable) and a
  /// "<Prefix>.request_bytes" histogram of requested sizes — the size-class
  /// distribution TraceLint predicts statically from a script.
  void attachTelemetry(Telemetry *Registry,
                       const std::string &Prefix = "alloc");

protected:
  /// Implementations: return the user address / release it.
  virtual Addr doMalloc(uint32_t Size) = 0;
  virtual void doFree(Addr Ptr) = 0;

  /// Traced load/store helpers: emit the reference as allocator traffic and
  /// charge instruction cost.
  uint32_t load(Addr Address) {
    Cost.chargeAlloc(RefCost);
    return Heap.load32(Address, AccessSource::Allocator);
  }
  void store(Addr Address, uint32_t Value) {
    Cost.chargeAlloc(RefCost);
    Heap.store32(Address, Value, AccessSource::Allocator);
  }

  /// Charges pure-arithmetic instruction cost.
  void charge(uint64_t Instructions) { Cost.chargeAlloc(Instructions); }

  /// Called when a shadow observer is attached; subclasses annotate the
  /// metadata regions they initialized with untraced pokes (sentinels,
  /// freelist-head arrays, mapping tables).
  virtual void onShadowAttached() {}

  /// Annotates [Address, Address+Bytes) as allocator metadata.
  void noteMetadata(Addr Address, uint32_t Bytes) {
    if (Shadow)
      Shadow->noteMetadataRange(*this, Address, Bytes);
  }

  /// The attached observer, for forwarding to nested backend allocators.
  HeapStateObserver *shadowObserver() const { return Shadow; }

  /// Called from attachTelemetry (after the base probes are re-fetched);
  /// subclasses fetch their own probes with counterProbe/histogramProbe and
  /// forward the registry to nested backend allocators.
  virtual void onTelemetryAttached() {}

  /// The attached registry (null when telemetry is off) and this
  /// allocator's instrument-name prefix.
  Telemetry *telemetry() const { return Telem; }
  const std::string &telemetryPrefix() const { return TelemPrefix; }

  /// Probe lookup under this allocator's prefix; null when no registry is
  /// attached (or, for histograms, below full level), so probe sites reduce
  /// to one pointer test.
  TelemetryCounter *counterProbe(const char *Name) const {
    return Telem ? Telem->counter(TelemPrefix + "." + Name) : nullptr;
  }
  TelemetryHistogram *histogramProbe(const char *Name) const {
    return Telem ? Telem->histogram(TelemPrefix + "." + Name) : nullptr;
  }

  /// Instruction cost attributed to each traced memory reference (load +
  /// address arithmetic + use).
  static constexpr uint64_t RefCost = 2;

  SimHeap &Heap;
  CostModel &Cost;

private:
  AllocatorStats Stats;
  /// Host-side shadow of live objects (requested sizes); used for stats and
  /// to catch invalid/double frees. Not part of the simulation.
  std::unordered_map<Addr, uint32_t> LiveObjects;
  /// HeapCheck observer; null when checking is off.
  HeapStateObserver *Shadow = nullptr;

  /// Telemetry registry and base-wrapper probes; all null when telemetry
  /// is off.
  Telemetry *Telem = nullptr;
  std::string TelemPrefix = "alloc";
  TelemetryCounter *MallocsProbe = nullptr;
  TelemetryCounter *FreesProbe = nullptr;
  TelemetryHistogram *SearchLenHist = nullptr;
  TelemetryHistogram *RequestBytesHist = nullptr;
};

/// Creates an allocator of the given kind over \p Heap. AllocatorKind::Custom
/// cannot be built without a profile; use CustomAlloc directly for that.
std::unique_ptr<Allocator> createAllocator(AllocatorKind Kind, SimHeap &Heap,
                                           CostModel &Cost);

} // namespace allocsim

#endif // ALLOCSIM_ALLOC_ALLOCATOR_H
