//===- alloc/QuickFit.h - Weinstock/Wulf QuickFit allocator -----*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's QUICKFIT (Weinstock & Wulf): a hybrid allocator. Requests of
/// 4-32 bytes, rounded to word multiples, are served from an array of
/// exact-size LIFO freelists — "the object request size is used as an index
/// into the freelist array, returning the appropriate freelist in a small
/// number of instructions". Empty fast lists are replenished by carving
/// from a bump-pointer tail region. Larger requests are delegated to a
/// general first-fit allocator — GNU G++, matching the configuration the
/// paper measured. Fast blocks are never split, coalesced, or returned.
///
/// Deallocation identifies the owning allocator through a one-word boundary
/// tag ("using a boundary tag in our implementation"), whose cache cost the
/// paper's Section 4.3 discusses.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_ALLOC_QUICKFIT_H
#define ALLOCSIM_ALLOC_QUICKFIT_H

#include "alloc/Allocator.h"
#include "alloc/GnuGxx.h"

namespace allocsim {

/// Weinstock/Wulf QuickFit with a GNU G++ backend for large requests.
class QuickFit final : public Allocator {
public:
  QuickFit(SimHeap &Heap, CostModel &Cost);

  AllocatorKind kind() const override { return AllocatorKind::QuickFit; }

  /// Largest request served by the fast lists.
  static constexpr uint32_t MaxFastBytes = 32;
  /// Fast size classes: 4, 8, ..., 32 bytes.
  static constexpr unsigned NumFastLists = MaxFastBytes / 4;

  /// Fast-path telemetry.
  uint64_t fastMallocs() const { return FastMallocs; }
  uint64_t slowMallocs() const { return SlowMallocs; }

  /// Scans performed by the general (GNU G++) backend.
  uint64_t blocksSearched() const override {
    return General.blocksSearched();
  }

  /// Introspection for the HeapCheck invariant walker.
  Addr freelistSlot(unsigned ClassIndex) const {
    return FastLists + 4 * ClassIndex;
  }
  const GnuGxx &generalBackend() const { return General; }

  /// Fast header word: class index and the fast-block marker bit (bit 1;
  /// general-allocator headers always have it clear since their sizes are
  /// multiples of four).
  static uint32_t fastHeader(unsigned ClassIndex) {
    return (static_cast<uint32_t>(ClassIndex) << 8) | 0x2u | 0x1u;
  }
  static bool isFastHeader(uint32_t Header) { return (Header & 0x2u) != 0; }

private:
  Addr doMalloc(uint32_t Size) override;
  void doFree(Addr Ptr) override;

  /// Carves a fresh block of the class from the tail region.
  Addr carveFast(unsigned ClassIndex);

  void onShadowAttached() override {
    noteMetadata(FastLists, 4 * NumFastLists);
    General.attachShadow(shadowObserver());
  }

  void onTelemetryAttached() override {
    ClassHitsProbe = counterProbe("class_hits");
    ClassMissesProbe = counterProbe("class_misses");
    RefillsProbe = counterProbe("tail_refills");
    ClassIndexHist = histogramProbe("class_index");
    General.attachTelemetry(telemetry(), telemetryPrefix() + ".general");
  }

  /// Address of the fast freelist head array (static area).
  Addr FastLists;
  /// Bump-pointer tail region for replenishing fast lists.
  Addr TailPtr = 0;
  Addr TailEnd = 0;

  /// General allocator for requests above MaxFastBytes.
  GnuGxx General;

  uint64_t FastMallocs = 0;
  uint64_t SlowMallocs = 0;

  /// Telemetry probes; null when telemetry is off. A "class hit" is a
  /// malloc served by the exact-size fast lists, a "miss" is a delegation
  /// to the general backend, so hits + misses == mallocs.
  TelemetryCounter *ClassHitsProbe = nullptr;
  TelemetryCounter *ClassMissesProbe = nullptr;
  TelemetryCounter *RefillsProbe = nullptr;
  TelemetryHistogram *ClassIndexHist = nullptr;
};

} // namespace allocsim

#endif // ALLOCSIM_ALLOC_QUICKFIT_H
