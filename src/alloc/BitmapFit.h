//===- alloc/BitmapFit.h - Cache-line bitmap-fit allocator ------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fast Bitmap Fit (Matani & Menghani 2021): a cache-line-conscious
/// allocator for single-object allocations. Requests up to MaxSingleBytes
/// are rounded up to a whole number of cache lines and served from slabs of
/// fixed-size, line-aligned slots; a per-slab bitmap records slot
/// occupancy, and allocation scans it a word at a time for the first word
/// with a clear bit — 32 slots tested per memory reference, with all the
/// allocator's bookkeeping packed into one header line per slab instead of
/// boundary tags interleaved with user data (the cache-pollution effect the
/// 1993 paper's Table 6 measures).
///
/// Slab format (SlabBytes, aligned to a heap-relative slab boundary):
///
///        +0   magic | bucket index
///        +4   used-slot count
///        +8   next slab in this bucket's list (0 = end)
///        +12  spare (always 0)
///        +16  bitmap, BitmapWords words; bit = 1 means slot in use,
///             bits past the last real slot are permanently 1
///        +32  slots: SlotsPerSlab objects of (bucket+1) cache lines each
///
/// Deallocation finds the owning slab in O(1) through a compact per-slab
/// map (one word per SlabBytes of heap, grown by realloc-and-copy like
/// GnuLocal's descriptor table): a zero entry means the address belongs to
/// the nested general allocator, which serves every request above
/// MaxSingleBytes — the hybrid dispatch QuickFit also uses, with the same
/// telemetry/shadow forwarding ("<prefix>.general").
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_ALLOC_BITMAPFIT_H
#define ALLOCSIM_ALLOC_BITMAPFIT_H

#include "alloc/Allocator.h"
#include "alloc/GnuGxx.h"

namespace allocsim {

/// Cache-line-bucketed bitmap fit with a GNU G++ backend for large requests.
class BitmapFit final : public Allocator {
public:
  BitmapFit(SimHeap &Heap, CostModel &Cost);

  AllocatorKind kind() const override { return AllocatorKind::BitmapFit; }

  /// One slot granule: the simulated cache line.
  static constexpr uint32_t LineBytes = 32;
  /// Buckets serve 1..NumBuckets whole lines (32..512 bytes).
  static constexpr unsigned NumBuckets = 16;
  /// Largest request served from the bitmap slabs.
  static constexpr uint32_t MaxSingleBytes = NumBuckets * LineBytes;
  /// Slab granule; also the slab-map granule.
  static constexpr uint32_t SlabBytes = 4096;
  static constexpr uint32_t SlabShift = 12;
  /// Header line: 4 bookkeeping words + the bitmap.
  static constexpr uint32_t SlabHeaderBytes = 32;
  static constexpr unsigned BitmapWords = 4;

  /// Slab header word 0: magic in the high half, bucket in the low.
  static uint32_t slabHeaderWord(unsigned Bucket) {
    return 0xB17F0000u | Bucket;
  }

  static uint32_t slotBytes(unsigned Bucket) {
    return (Bucket + 1) * LineBytes;
  }
  static uint32_t slotsPerSlab(unsigned Bucket) {
    return (SlabBytes - SlabHeaderBytes) / slotBytes(Bucket);
  }

  /// Slabs examined across all bucket-list searches.
  uint64_t blocksSearched() const override { return SlabsExamined; }

  /// Introspection for the HeapCheck invariant walker.
  Addr bucketHeadSlot(unsigned Bucket) const {
    return BucketHeads + 4 * Bucket;
  }
  Addr slabMapAddr() const { return MapAddr; }
  uint32_t slabMapCapacity() const { return MapCapacity; }
  const GnuGxx &generalBackend() const { return General; }

private:
  Addr doMalloc(uint32_t Size) override;
  void doFree(Addr Ptr) override;

  /// Serves one slot of \p Bucket (0 on OOM).
  Addr mallocSmall(unsigned Bucket);

  /// Carves, registers and links a fresh slab for \p Bucket; returns 0 —
  /// with every structure untouched — on heap exhaustion.
  Addr newSlab(unsigned Bucket);

  /// Grows the slab map to cover at least \p MinSlabs slab indices,
  /// copying live entries. Returns false — old map intact — on exhaustion.
  bool growMap(uint32_t MinSlabs);

  uint32_t slabIndexOf(Addr Address) const {
    return (Address - Heap.base()) >> SlabShift;
  }
  Addr slabAddr(uint32_t Index) const {
    return Heap.base() + (Index << SlabShift);
  }

  void onShadowAttached() override {
    noteMetadata(BucketHeads, 4 * NumBuckets);
    noteMetadata(MapAddr, 4 * MapCapacity);
    General.attachShadow(shadowObserver());
  }

  void onTelemetryAttached() override {
    ScanWordsProbe = counterProbe("bitmap.scan_words");
    SlabCarvesProbe = counterProbe("bitmap.slab_carves");
    MapGrowsProbe = counterProbe("bitmap.map_grows");
    ClassHitsProbe = counterProbe("class_hits");
    ClassMissesProbe = counterProbe("class_misses");
    ClassIndexHist = histogramProbe("class_index");
    General.attachTelemetry(telemetry(), telemetryPrefix() + ".general");
  }

  /// Static area: NumBuckets slab-list head words.
  Addr BucketHeads = 0;

  /// Current slab map (reallocated on growth).
  Addr MapAddr = 0;
  uint32_t MapCapacity = 0;

  /// General allocator for requests above MaxSingleBytes.
  GnuGxx General;

  uint64_t SlabsExamined = 0;

  /// Telemetry probes; null when telemetry is off. A "class hit" is a
  /// malloc served from the bitmap slabs, a "miss" a delegation to the
  /// general backend, so hits + misses == mallocs; scan_words counts
  /// bitmap words examined (the paper's word-at-a-time search cost).
  TelemetryCounter *ScanWordsProbe = nullptr;
  TelemetryCounter *SlabCarvesProbe = nullptr;
  TelemetryCounter *MapGrowsProbe = nullptr;
  TelemetryCounter *ClassHitsProbe = nullptr;
  TelemetryCounter *ClassMissesProbe = nullptr;
  TelemetryHistogram *ClassIndexHist = nullptr;
};

} // namespace allocsim

#endif // ALLOCSIM_ALLOC_BITMAPFIT_H
