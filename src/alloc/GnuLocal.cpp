//===- alloc/GnuLocal.cpp - Haertel page-chunk GNU malloc -----------------===//

#include "alloc/GnuLocal.h"

#include "support/Error.h"

#include <cassert>

using namespace allocsim;

GnuLocal::GnuLocal(SimHeap &AllocHeap, CostModel &AllocCost,
                   bool EmulateBoundaryTags)
    : Allocator(AllocHeap, AllocCost), Tagged(EmulateBoundaryTags) {
  // Static area: 9 fragment-list sentinels (next/prev) + the free-run list
  // head slot. Initialized untraced (load-time setup).
  unsigned NumFragLists = MaxFragLog - MinFragLog + 1;
  FragHeads = Heap.sbrk(8 * NumFragLists + 4);
  for (unsigned Log = MinFragLog; Log <= MaxFragLog; ++Log) {
    Heap.poke32(fragHead(Log) + 0, fragHead(Log)); // next = self
    Heap.poke32(fragHead(Log) + 4, fragHead(Log)); // prev = self
  }
  RunListHeadSlot = FragHeads + 8 * NumFragLists;
  Heap.poke32(RunListHeadSlot, 0);

  // Initial descriptor table, then mark every block the static area and the
  // table occupy as busy so the run allocator never hands them out.
  // Construction happens before any FaultLab soft limit is applied, so the
  // initial table always fits.
  [[maybe_unused]] bool Grew = growTable(64);
  assert(Grew && "initial descriptor table did not fit the heap");
  uint32_t UsedBlocks = blockIndexOf(Heap.brk() - 1) + 1;
  markBusyRun(0, UsedBlocks);
}

//===----------------------------------------------------------------------===//
// Descriptor table management
//===----------------------------------------------------------------------===//

bool GnuLocal::growTable(uint32_t MinBlocks) {
  uint32_t NewCapacity = TableCapacity * 2;
  if (NewCapacity < MinBlocks + 64)
    NewCapacity = MinBlocks + 64;

  charge(32); // realloc bookkeeping.
  bool Initial = TableAddr == 0;
  // Blocks with meaningful descriptors: everything up to the break as it
  // stands *before* the new table is carved.
  uint32_t Live = Initial ? 0 : blockIndexOf(Heap.brk() - 1) + 1;
  assert(Live <= TableCapacity && "descriptor table fell behind the heap");
  Addr NewTable = 0;
  if (!Heap.trySbrk(16 * NewCapacity, NewTable))
    return false;
  if (TableGrowsProbe)
    TableGrowsProbe->add();

  if (!Initial) {
    // Copy live descriptors (all blocks up to the old break, including the
    // old table itself). This is the original's table realloc-and-copy,
    // and its references are real traffic.
    for (uint32_t I = 0; I != Live; ++I)
      for (uint32_t W = 0; W != 16; W += 4)
        Heap.store32(NewTable + 16 * I + W,
                     Heap.load32(TableAddr + 16 * I + W,
                                 AccessSource::Allocator),
                     AccessSource::Allocator);
    charge(4 * Live);
  }

  TableAddr = NewTable;
  TableCapacity = NewCapacity;

  if (!Initial) {
    // Mark the blocks the new table occupies (including any partial block
    // it shares) as busy. The old table's blocks stay marked busy; like the
    // original, the space is recycled only through the block pool when
    // freed, which we conservatively never do for table generations.
    uint32_t First = blockIndexOf(NewTable);
    uint32_t Last = blockIndexOf(Heap.brk() - 1);
    markBusyRun(First, Last - First + 1);
  }
  return true;
}

void GnuLocal::markBusyRun(uint32_t Index, uint32_t Count) {
  assert(Count > 0 && "empty busy run");
  store(descAddr(Index) + 0, TypeLargeHead);
  store(descAddr(Index) + 4, Count);
  for (uint32_t I = 1; I != Count; ++I)
    store(descAddr(Index + I) + 0, TypeLargeCont);
}

uint32_t GnuLocal::morecoreBlocks(uint32_t Count) {
  for (;;) {
    // Align the break to a block boundary; padding bytes extend a block
    // that is already marked busy (static or table storage).
    uint32_t Offset = (Heap.brk() - Heap.base()) & (BlockBytes - 1);
    uint32_t Pad = Offset == 0 ? 0 : BlockBytes - Offset;
    uint32_t FirstNew = blockIndexOf(Heap.brk() + Pad);

    if (FirstNew + Count > TableCapacity) {
      // Growing the table moves the break; retry the alignment math.
      if (!growTable(FirstNew + Count))
        return NoBlock;
      continue;
    }

    charge(24); // sbrk overhead.
    Addr Region = 0;
    if (!Heap.trySbrk(Pad + Count * BlockBytes, Region))
      return NoBlock;
    Region += Pad;
    assert(blockIndexOf(Region) == FirstNew && "block alignment drifted");
    assert((Region & (BlockBytes - 1)) == 0 && "unaligned block region");
    return FirstNew;
  }
}

//===----------------------------------------------------------------------===//
// Whole-block (large) allocation
//===----------------------------------------------------------------------===//

uint32_t GnuLocal::allocateBlocks(uint32_t Count) {
  // First-fit over the address-ordered free-run list; the walk touches
  // only descriptors (the "localized chunk headers").
  uint64_t RunsExamined = 0;
  uint32_t PrevIndex = 0;
  uint32_t Current = load(RunListHeadSlot);
  while (Current != 0) {
    charge(4);
    ++RunsExamined;
    Addr Desc = descAddr(Current);
    uint32_t RunLength = load(Desc + 4);
    if (RunLength >= Count) {
      Addr PrevSlot =
          PrevIndex == 0 ? RunListHeadSlot : descAddr(PrevIndex) + 8;
      uint32_t Next = load(Desc + 8);
      if (RunLength == Count) {
        // Exact: unlink the run.
        store(PrevSlot, Next);
        if (Next != 0)
          store(descAddr(Next) + 12, PrevIndex);
      } else {
        // Take the front; the remainder becomes the run head.
        uint32_t NewHead = Current + Count;
        Addr NewDesc = descAddr(NewHead);
        store(NewDesc + 0, TypeFree);
        store(NewDesc + 4, RunLength - Count);
        store(NewDesc + 8, Next);
        store(NewDesc + 12, PrevIndex);
        store(PrevSlot, NewHead);
        if (Next != 0)
          store(descAddr(Next) + 12, NewHead);
      }
      markBusyRun(Current, Count);
      if (RunSearchHist)
        RunSearchHist->record(RunsExamined);
      return Current;
    }
    PrevIndex = Current;
    Current = load(Desc + 8);
  }

  // Nothing fits: extend the heap by exactly the blocks needed.
  if (RunSearchHist)
    RunSearchHist->record(RunsExamined);
  uint32_t Index = morecoreBlocks(Count);
  if (Index == NoBlock)
    return NoBlock; // OOM: the searched run list is unchanged.
  markBusyRun(Index, Count);
  return Index;
}

void GnuLocal::freeBlocks(uint32_t Index, uint32_t Count) {
  assert(Count > 0 && "freeing empty run");

  // Find the address-ordered position.
  uint32_t PrevIndex = 0;
  uint32_t Current = load(RunListHeadSlot);
  while (Current != 0 && Current < Index) {
    charge(4);
    PrevIndex = Current;
    Current = load(descAddr(Current) + 8);
  }
  assert(Current != Index && "double free of block run");

  uint32_t HeadIndex = Index;
  uint32_t Length = Count;

  // Merge with the preceding run if adjacent.
  bool MergedPrev = false;
  if (PrevIndex != 0) {
    uint32_t PrevLength = load(descAddr(PrevIndex) + 4);
    if (PrevIndex + PrevLength == Index) {
      Length += PrevLength;
      HeadIndex = PrevIndex;
      store(descAddr(PrevIndex) + 4, Length);
      store(descAddr(Index) + 0, TypeFreeInterior);
      MergedPrev = true;
    }
  }
  if (!MergedPrev) {
    Addr Desc = descAddr(Index);
    Addr PrevSlot = PrevIndex == 0 ? RunListHeadSlot : descAddr(PrevIndex) + 8;
    store(Desc + 0, TypeFree);
    store(Desc + 4, Length);
    store(Desc + 8, Current);
    store(Desc + 12, PrevIndex);
    store(PrevSlot, Index);
    if (Current != 0)
      store(descAddr(Current) + 12, Index);
  }

  // Merge with the following run if adjacent.
  if (Current != 0 && HeadIndex + Length == Current) {
    Addr HeadDesc = descAddr(HeadIndex);
    Addr CurDesc = descAddr(Current);
    uint32_t CurLength = load(CurDesc + 4);
    uint32_t CurNext = load(CurDesc + 8);
    store(HeadDesc + 4, Length + CurLength);
    store(HeadDesc + 8, CurNext);
    if (CurNext != 0)
      store(descAddr(CurNext) + 12, HeadIndex);
    store(CurDesc + 0, TypeFreeInterior);
  }

  // Interior descriptors of the newly freed run (debug clarity; the
  // original leaves them stale).
  for (uint32_t I = 1; I < Count; ++I)
    store(descAddr(Index + I) + 0, TypeFreeInterior);
}

//===----------------------------------------------------------------------===//
// Fragment (small) allocation
//===----------------------------------------------------------------------===//

Addr GnuLocal::mallocFragment(unsigned FragLog) {
  Addr Head = fragHead(FragLog);
  Addr First = load(Head + 0);
  if (First != Head) {
    // Pop the first free fragment of this class.
    Addr Next = load(First + 0);
    store(Head + 0, Next);
    store(Next + 4, Head);

    Addr Desc = descAddr(blockIndexOf(First));
    charge(4);
    uint32_t NFree = load(Desc + 8);
    assert(NFree > 0 && "fragment list/descriptor count mismatch");
    store(Desc + 8, NFree - 1);
    return First;
  }

  // No free fragment: split a fresh block into fragments of this class and
  // link all but the first onto the class list.
  uint32_t Index = allocateBlocks(1);
  if (Index == NoBlock)
    return 0; // OOM: the class list is still empty.
  Addr Block = blockAddr(Index);
  uint32_t FragBytes = 1u << FragLog;
  uint32_t PerBlock = BlockBytes >> FragLog;

  Addr Desc = descAddr(Index);
  store(Desc + 0, TypeFragmented);
  store(Desc + 4, FragLog);
  store(Desc + 8, PerBlock - 1);

  assert(load(Head + 0) == Head && "class list must be empty here");
  charge(4);
  for (uint32_t I = 1; I != PerBlock; ++I) {
    Addr Frag = Block + I * FragBytes;
    store(Frag + 0, I + 1 != PerBlock ? Frag + FragBytes : Head);
    store(Frag + 4, I != 1 ? Frag - FragBytes : Head);
  }
  store(Head + 0, Block + FragBytes);
  store(Head + 4, Block + (PerBlock - 1) * FragBytes);
  return Block;
}

void GnuLocal::freeFragment(Addr Ptr, Addr BlockAddress, Addr Desc) {
  uint32_t FragLog = load(Desc + 4);
  assert(FragLog >= MinFragLog && FragLog <= MaxFragLog &&
         "corrupt fragment descriptor");
  uint32_t FragBytes = 1u << FragLog;
  uint32_t PerBlock = BlockBytes >> FragLog;
  assert(((Ptr - BlockAddress) & (FragBytes - 1)) == 0 &&
         "free of misaligned fragment");

  // Push onto the class list.
  Addr Head = fragHead(FragLog);
  Addr Next = load(Head + 0);
  store(Ptr + 0, Next);
  store(Ptr + 4, Head);
  store(Next + 4, Ptr);
  store(Head + 0, Ptr);

  uint32_t NFree = load(Desc + 8) + 1;
  store(Desc + 8, NFree);
  if (NFree != PerBlock)
    return;

  // Every fragment of the block is free: unlink them all and return the
  // whole block to the pool, as the original does.
  charge(8);
  for (uint32_t I = 0; I != PerBlock; ++I) {
    Addr Frag = BlockAddress + I * FragBytes;
    Addr FragNext = load(Frag + 0);
    Addr FragPrev = load(Frag + 4);
    store(FragPrev + 0, FragNext);
    store(FragNext + 4, FragPrev);
  }
  ++BlocksReclaimed;
  if (ReclaimsProbe)
    ReclaimsProbe->add();
  freeBlocks(blockIndexOf(BlockAddress), 1);
}

//===----------------------------------------------------------------------===//
// Public paths
//===----------------------------------------------------------------------===//

Addr GnuLocal::mallocInner(uint32_t Size) {
  charge(CallOverhead);
  if (Size <= (1u << MaxFragLog)) {
    // Round to a power of two (the original's loop).
    unsigned FragLog = MinFragLog;
    while ((1u << FragLog) < Size)
      ++FragLog;
    charge(2 * (FragLog - MinFragLog) + 4);
    if (FragMallocsProbe)
      FragMallocsProbe->add();
    if (FragLogHist)
      FragLogHist->record(FragLog);
    return mallocFragment(FragLog);
  }
  uint32_t Count = (Size + BlockBytes - 1) >> BlockShift;
  charge(6);
  if (BlockMallocsProbe)
    BlockMallocsProbe->add();
  uint32_t Index = allocateBlocks(Count);
  if (Index == NoBlock)
    return 0; // OOM propagated to the caller.
  return blockAddr(Index);
}

void GnuLocal::freeInner(Addr Ptr) {
  charge(CallOverhead);
  Addr Block = Ptr & ~(BlockBytes - 1);
  Addr Desc = descAddr(blockIndexOf(Block));
  uint32_t Type = load(Desc + 0);
  if (Type == TypeFragmented) {
    freeFragment(Ptr, Block, Desc);
    return;
  }
  assert(Type == TypeLargeHead && Ptr == Block &&
         "free of bad GnuLocal pointer");
  uint32_t Count = load(Desc + 4);
  freeBlocks(blockIndexOf(Block), Count);
}

Addr GnuLocal::doMalloc(uint32_t Size) {
  if (!Tagged)
    return mallocInner(Size);

  // Table 6 variant: pad each object with 8 bytes of emulated boundary
  // tags and touch them the way real tags are touched on allocation.
  uint32_t Rounded = (Size + 3) & ~3u;
  Addr Base = mallocInner(Rounded + 8);
  if (Base == 0)
    return 0; // OOM: no tag words were written.
  charge(4);
  Heap.store32(Base, Size, AccessSource::TagEmulation);
  Heap.store32(Base + 4 + Rounded, Size | 1, AccessSource::TagEmulation);
  return Base + 4;
}

void GnuLocal::doFree(Addr Ptr) {
  if (!Tagged) {
    freeInner(Ptr);
    return;
  }
  Addr Base = Ptr - 4;
  charge(4);
  uint32_t Size = Heap.load32(Base, AccessSource::TagEmulation);
  uint32_t Rounded = (Size + 3) & ~3u;
  [[maybe_unused]] uint32_t EndTag =
      Heap.load32(Base + 4 + Rounded, AccessSource::TagEmulation);
  assert(EndTag == (Size | 1) && "corrupt emulated boundary tag");
  freeInner(Base);
}
