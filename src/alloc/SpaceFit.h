//===- alloc/SpaceFit.h - Head-first best fit with space-fitting *- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Head-first best fit with space-fitting splits (Hakarsa 2024, "Head-First
/// Memory Allocation on Best-Fit with Space-Fitting"). A modern sequential-
/// fit comparison point for the paper's locality claim: classic best fit is
/// space-optimal but slow because every allocation rescans the whole list.
/// Keeping the free list sorted by (size, address) moves that work to
/// deallocation time — the tightest fit for any request is the *first*
/// sufficient node from the head, so an allocation that the head satisfies
/// completes in O(1) ("head-first") while the insert position of a freed
/// block is found by one ordered walk.
///
/// "Space-fitting" is the split discipline: a fitting block is split
/// whenever the remainder is a legal block at all (MinBlockBytes), rather
/// than first fit's larger splinter threshold — the space-optimal choice
/// the scheme is named for.
///
/// Identical block format and coalescing to FirstFit/BestFit (boundary
/// tags, doubly-linked free list); only the list discipline differs.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_ALLOC_SPACEFIT_H
#define ALLOCSIM_ALLOC_SPACEFIT_H

#include "alloc/CoalescingAllocator.h"

namespace allocsim {

/// Best fit over one (size, address)-sorted freelist, head-first.
class SpaceFit final : public CoalescingAllocator {
public:
  SpaceFit(SimHeap &Heap, CostModel &Cost);

  AllocatorKind kind() const override { return AllocatorKind::SpaceFit; }

  uint64_t blocksSearched() const override { return BlocksExamined; }

  /// Introspection for the HeapCheck invariant walker, which additionally
  /// verifies the (size, address) sort discipline.
  Addr freelistSentinel() const { return Sentinel; }

private:
  std::pair<Addr, uint32_t> findFit(uint32_t Need) override;
  void insertFree(Addr Block, uint32_t Size) override;
  uint64_t callOverhead() const override { return 12; }
  /// Space-fitting: split whenever the remainder is a legal block.
  uint32_t minSplitBytes() const override { return MinBlockBytes; }

  void onTelemetryAttached() override;

  Addr Sentinel;
  uint64_t BlocksExamined = 0;

  /// Nodes walked to find a freed block's sorted position — the cost best
  /// fit pays at free time instead of malloc time. Null when telemetry is
  /// off or below full level.
  TelemetryHistogram *InsertWalkHist = nullptr;
};

} // namespace allocsim

#endif // ALLOCSIM_ALLOC_SPACEFIT_H
