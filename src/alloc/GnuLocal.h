//===- alloc/GnuLocal.h - Haertel page-chunk GNU malloc ---------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's GNU LOCAL allocator: Mike Haertel's hybrid of first-fit and
/// segregated storage distributed as the FSF malloc. Its defining features,
/// all reproduced here:
///
///  * The heap is divided into 4 KB blocks. A compact table of per-block
///    descriptors ("chunk headers") is kept in "small, highly-localized"
///    storage; instead of traversing the heap to find space, "only the
///    information in the chunk headers must be traversed".
///  * Requests below half a block are rounded to a power of two and served
///    as fragments; all fragments in a block share one size, so an object's
///    size is found from its block's descriptor — there are *no per-object
///    boundary tags* (the paper's Table 6 hinges on this).
///  * Each descriptor counts the free fragments in its block; when all
///    fragments of a block are free the entire block is returned to the
///    block pool ("deallocates entire chunks when all the objects in the
///    chunk have been freed").
///  * Requests of half a block and up take whole block runs, found first-fit
///    on an address-ordered free-run list that lives entirely in the
///    descriptor table and coalesces adjacent runs there.
///  * The descriptor table itself lives in the heap and is reallocated
///    (copied) when the heap outgrows it, as the original does.
///
/// A constructor flag adds emulated 8-byte boundary tags to every object —
/// the exact modification the paper made for its Table 6 experiment.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_ALLOC_GNULOCAL_H
#define ALLOCSIM_ALLOC_GNULOCAL_H

#include "alloc/Allocator.h"

namespace allocsim {

/// Haertel's GNU malloc (page-chunk allocator).
class GnuLocal final : public Allocator {
public:
  /// If \p EmulateBoundaryTags is set, every object is padded by 8 bytes
  /// and tag words are written/read at its ends, reproducing the paper's
  /// Table 6 cache-pollution experiment. The tag references are emitted
  /// with AccessSource::TagEmulation so their misses can be attributed.
  GnuLocal(SimHeap &Heap, CostModel &Cost, bool EmulateBoundaryTags = false);

  AllocatorKind kind() const override { return AllocatorKind::GnuLocal; }

  static constexpr uint32_t BlockBytes = 4096;
  static constexpr uint32_t BlockShift = 12;
  /// Fragment sizes: 2^3 .. 2^11 bytes (8 .. 2048).
  static constexpr unsigned MinFragLog = 3;
  static constexpr unsigned MaxFragLog = 11;

  bool emulatesBoundaryTags() const { return Tagged; }

  /// Telemetry: whole blocks reclaimed because every fragment was freed.
  uint64_t blocksReclaimed() const { return BlocksReclaimed; }

  /// Block descriptor types (word 0 of each 16-byte descriptor); public so
  /// the HeapCheck invariant walker can decode the table.
  enum DescType : uint32_t {
    TypeFree = 0,       ///< head of a free run; A=length, B=next, C=prev
    TypeLargeHead = 1,  ///< first block of a busy run; A=length
    TypeLargeCont = 2,  ///< interior block of a busy run
    TypeFragmented = 3, ///< fragmented block; A=fragLog, B=free fragments
    TypeFreeInterior = 4, ///< interior block of a free run (debug aid)
  };

  /// Introspection for the HeapCheck invariant walker.
  Addr descTableAddr() const { return TableAddr; }
  uint32_t descTableCapacity() const { return TableCapacity; }
  Addr runListHeadSlot() const { return RunListHeadSlot; }
  Addr fragListHead(unsigned FragLog) const { return fragHead(FragLog); }

private:
  Addr doMalloc(uint32_t Size) override;
  void doFree(Addr Ptr) override;

  Addr mallocInner(uint32_t Size);
  void freeInner(Addr Ptr);

  /// Small-object (fragment) paths.
  Addr mallocFragment(unsigned FragLog);
  void freeFragment(Addr Ptr, Addr BlockAddr, Addr Desc);

  /// Failure sentinel of the block-index paths (block 0 is always the
  /// static area, so valid results start at 1).
  static constexpr uint32_t NoBlock = UINT32_MAX;

  /// Whole-block paths. Indices are heap-relative block numbers; the
  /// allocating paths return NoBlock — with the run list and descriptor
  /// table unchanged — on heap exhaustion.
  uint32_t allocateBlocks(uint32_t Count);
  void freeBlocks(uint32_t Index, uint32_t Count);
  void markBusyRun(uint32_t Index, uint32_t Count);

  /// Grows (or initially creates) the descriptor table to cover at least
  /// \p MinBlocks blocks, copying live descriptors. Returns false — with
  /// the old table intact — on heap exhaustion.
  bool growTable(uint32_t MinBlocks);

  /// Obtains \p Count fresh aligned blocks from sbrk (NoBlock on OOM).
  uint32_t morecoreBlocks(uint32_t Count);

  void onShadowAttached() override {
    unsigned NumFragLists = MaxFragLog - MinFragLog + 1;
    noteMetadata(FragHeads, 8 * NumFragLists + 4);
    if (TableAddr != 0)
      noteMetadata(TableAddr, 16 * TableCapacity);
  }

  void onTelemetryAttached() override {
    FragMallocsProbe = counterProbe("frag_mallocs");
    BlockMallocsProbe = counterProbe("block_mallocs");
    ReclaimsProbe = counterProbe("blocks_reclaimed");
    TableGrowsProbe = counterProbe("table_grows");
    RunSearchHist = histogramProbe("run_search_len");
    FragLogHist = histogramProbe("class_index");
  }

  uint32_t blockIndexOf(Addr Address) const {
    return (Address - Heap.base()) >> BlockShift;
  }
  Addr blockAddr(uint32_t Index) const {
    return Heap.base() + (Index << BlockShift);
  }
  Addr descAddr(uint32_t Index) const { return TableAddr + 16 * Index; }
  Addr fragHead(unsigned FragLog) const {
    return FragHeads + 8 * (FragLog - MinFragLog);
  }

  /// Calibrated per-call instruction overhead: the original is by far the
  /// heaviest of the five implementations ("considerable expense in
  /// execution performance", Figure 1; Tables 4/5 put its total time
  /// 13-18% above BSD's on espresso and gawk, which this constant
  /// reproduces).
  static constexpr uint64_t CallOverhead = 110;

  bool Tagged;

  /// Static area addresses.
  Addr FragHeads = 0;
  Addr RunListHeadSlot = 0;

  /// Current descriptor table (reallocated on growth).
  Addr TableAddr = 0;
  uint32_t TableCapacity = 0;

  uint64_t BlocksReclaimed = 0;

  /// Telemetry probes; null when telemetry is off. The descriptor run-list
  /// walk gets its own histogram (RunSearchHist) instead of feeding
  /// blocksSearched(), which stays 0 for this allocator (the committed
  /// golden results depend on that).
  TelemetryCounter *FragMallocsProbe = nullptr;
  TelemetryCounter *BlockMallocsProbe = nullptr;
  TelemetryCounter *ReclaimsProbe = nullptr;
  TelemetryCounter *TableGrowsProbe = nullptr;
  TelemetryHistogram *RunSearchHist = nullptr;
  TelemetryHistogram *FragLogHist = nullptr;
};

} // namespace allocsim

#endif // ALLOCSIM_ALLOC_GNULOCAL_H
