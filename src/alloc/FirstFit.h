//===- alloc/FirstFit.h - Knuth first-fit allocator -------------*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's FIRSTFIT: a first-fit strategy with the optimizations
/// suggested by Knuth, as implemented by Mark Moraes. All free blocks live
/// on one circular doubly-linked list that is scanned from a roving pointer
/// (which "eliminates the aggregation of small blocks at the front of the
/// freelist"). Blocks carry boundary tags at both ends so frees coalesce
/// with adjacent free storage in constant time.
///
/// This is the paper's locality villain: the scan visits blocks scattered
/// across the whole address space, touching a header and a link word of
/// each — the measured cause of FIRSTFIT's page-fault and cache-miss rates.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_ALLOC_FIRSTFIT_H
#define ALLOCSIM_ALLOC_FIRSTFIT_H

#include "alloc/CoalescingAllocator.h"

namespace allocsim {

/// Free-list discipline for first fit. The paper measures Roving (the
/// Moraes implementation); the others are classic alternatives provided
/// for the extension ablation of what the roving pointer actually buys.
enum class FirstFitPolicy {
  /// Scan resumes at a roving pointer; freed blocks enter at the rover.
  Roving,
  /// Scan always starts at the list head; freed blocks push on the head.
  Lifo,
  /// Free list kept sorted by address; scan starts at the head. The paper
  /// notes this discipline's cost: "maintaining a sorted list takes
  /// considerable CPU time and many pages will be visited when objects
  /// are inserted in order".
  AddressOrdered,
};

/// Knuth/Moraes first fit with a roving pointer.
class FirstFit final : public CoalescingAllocator {
public:
  FirstFit(SimHeap &Heap, CostModel &Cost,
           FirstFitPolicy Policy = FirstFitPolicy::Roving);

  AllocatorKind kind() const override { return AllocatorKind::FirstFit; }

  FirstFitPolicy policy() const { return Policy; }

  /// Number of freelist nodes examined by all searches (scan-length
  /// telemetry; the paper's explanation for FIRSTFIT's cost).
  uint64_t blocksSearched() const override { return BlocksExamined; }

  /// Introspection for the HeapCheck invariant walker.
  Addr freelistSentinel() const { return Sentinel; }
  Addr roverPosition() const { return Rover; }

private:
  std::pair<Addr, uint32_t> findFit(uint32_t Need) override;
  void insertFree(Addr Block, uint32_t Size) override;
  void onUnlinked(Addr Block, Addr Next) override;
  uint64_t callOverhead() const override { return 12; }
  /// "If the extra piece is too small (in this case less than 24 bytes),
  /// the block is not split" — the paper's documented FIRSTFIT threshold.
  uint32_t minSplitBytes() const override { return 24; }

  FirstFitPolicy Policy;
  /// Sentinel of the circular freelist (in the static area).
  Addr Sentinel;
  /// Roving scan position: a free block or the sentinel.
  Addr Rover;

  uint64_t BlocksExamined = 0;
};

} // namespace allocsim

#endif // ALLOCSIM_ALLOC_FIRSTFIT_H
