//===- alloc/CustomAlloc.cpp - Synthesized (CustoMalloc) allocator --------===//

#include "alloc/CustomAlloc.h"

#include <cassert>

using namespace allocsim;

CustomAlloc::CustomAlloc(SimHeap &AllocHeap, CostModel &AllocCost,
                         SizeClassMap SynthesizedClasses)
    : Allocator(AllocHeap, AllocCost), Map(std::move(SynthesizedClasses)),
      General(AllocHeap, AllocCost) {
  // Install the Figure 9 mapping array (one word per word-granular request
  // size) and the class freelist heads in the static area.
  const std::vector<uint32_t> &Table = Map.table();
  MapTable = Heap.sbrk(static_cast<uint32_t>(4 * Table.size()));
  for (size_t I = 0; I != Table.size(); ++I)
    Heap.poke32(tableSlot(static_cast<uint32_t>(I)), Table[I]);

  FreeLists = Heap.sbrk(static_cast<uint32_t>(4 * Map.numClasses()));
}

Addr CustomAlloc::doMalloc(uint32_t Size) {
  if (Size > Map.maxSize()) {
    ++SlowMallocs;
    if (ClassMissesProbe)
      ClassMissesProbe->add();
    charge(4);
    return General.malloc(Size);
  }

  ++FastMallocs;
  charge(6);
  // The single traced lookup that makes an arbitrary mapping O(1).
  uint32_t ClassIndex = load(tableSlot((Size + 3) / 4));
  assert(ClassIndex == Map.classIndexFor(Size) && "mapping table corrupt");
  if (ClassHitsProbe)
    ClassHitsProbe->add();
  if (ClassIndexHist)
    ClassIndexHist->record(ClassIndex);

  Addr Head = load(freelistSlot(ClassIndex));
  if (Head == 0)
    return carve(ClassIndex);

  Addr Next = load(Head + 4);
  store(freelistSlot(ClassIndex), Next);
  store(Head, fastHeader(ClassIndex));
  return Head + 4;
}

Addr CustomAlloc::carve(uint32_t ClassIndex) {
  uint32_t BlockBytes = Map.classSize(ClassIndex) + 4;
  if (TailPtr + BlockBytes > TailEnd) {
    charge(24);
    uint32_t Chunk = BlockBytes > 4096 ? (BlockBytes + 4095) & ~4095u : 4096;
    Addr NewTail = 0;
    if (!Heap.trySbrk(Chunk, NewTail))
      return 0; // OOM: the exhausted tail region stays as it was.
    if (RefillsProbe)
      RefillsProbe->add();
    TailPtr = NewTail;
    TailEnd = TailPtr + Chunk;
  }
  charge(4);
  Addr Block = TailPtr;
  TailPtr += BlockBytes;
  store(Block, fastHeader(ClassIndex));
  return Block + 4;
}

void CustomAlloc::doFree(Addr Ptr) {
  charge(4);
  uint32_t Header = load(Ptr - 4);
  if (!isFastHeader(Header)) {
    General.free(Ptr);
    return;
  }

  uint32_t ClassIndex = Header >> 8;
  assert(ClassIndex < Map.numClasses() && "corrupt class header");
  Addr Block = Ptr - 4;
  Addr Head = load(freelistSlot(ClassIndex));
  store(Block + 4, Head);
  store(freelistSlot(ClassIndex), Block);
}
