//===- alloc/GnuGxx.cpp - Lea segregated first-fit allocator --------------===//

#include "alloc/GnuGxx.h"

#include <cassert>

using namespace allocsim;

GnuGxx::GnuGxx(SimHeap &AllocHeap, CostModel &AllocCost)
    : CoalescingAllocator(AllocHeap, AllocCost) {
  for (Addr &Bin : Bins)
    Bin = makeSentinel();
}

unsigned GnuGxx::binFor(uint32_t Size) {
  assert(Size >= MinBlockBytes && "block below minimum size");
  unsigned Log = 31 - static_cast<unsigned>(__builtin_clz(Size));
  unsigned Bin = Log - 4;
  return Bin >= NumBins ? NumBins - 1 : Bin;
}

std::pair<Addr, uint32_t> GnuGxx::findFit(uint32_t Need) {
  charge(6); // bin computation (logarithm of the request).
  unsigned StartBin = binFor(Need);

  // First-fit scan within the request's own bin: blocks here may be smaller
  // than the request (the bin spans a factor of two).
  Addr Sentinel = Bins[StartBin];
  for (Addr Node = load(Sentinel + 4); Node != Sentinel;
       Node = load(Node + 4)) {
    ++BlocksExamined;
    charge(2);
    uint32_t Tag = readHeader(Node);
    assert(!tagAllocated(Tag) && "allocated block on freelist");
    uint32_t Size = tagSize(Tag);
    if (Size >= Need)
      return {Node, Size};
  }

  // Any block in a higher bin is guaranteed to fit (except in the overflow
  // bin, whose entries still need a size check); take the first one.
  for (unsigned Bin = StartBin + 1; Bin < NumBins; ++Bin) {
    charge(2);
    Addr BinSentinel = Bins[Bin];
    for (Addr Node = load(BinSentinel + 4); Node != BinSentinel;
         Node = load(Node + 4)) {
      ++BlocksExamined;
      uint32_t Tag = readHeader(Node);
      uint32_t Size = tagSize(Tag);
      if (Size >= Need)
        return {Node, Size};
      if (Bin != NumBins - 1)
        assert(false && "undersized block in higher bin");
      charge(2);
    }
  }
  return {0, 0};
}

void GnuGxx::insertFree(Addr Block, uint32_t Size) {
  charge(6); // bin computation.
  linkAfter(Bins[binFor(Size)], Block);
}
