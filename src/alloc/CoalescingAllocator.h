//===- alloc/CoalescingAllocator.h - Boundary-tag machinery -----*- C++ -*-===//
//
// Part of allocsim (PLDI 1993 cache-locality-of-malloc reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the two sequential-fit allocators the paper studies
/// (FirstFit and GNU G++). Both use Knuth-style boundary tags — a size word
/// at each end of every block — so a freed block can be coalesced with
/// adjacent free storage in constant time, and both keep free blocks on
/// doubly-linked lists threaded through the blocks themselves. They differ
/// only in how the free list is organized (one roving list vs. an array of
/// size-segregated bins), which subclasses express through findFit /
/// insertFree.
///
/// Block format (sizes are total block bytes, multiples of 4, minimum 16):
///
///        +0        header word:  Size | 1 if allocated, Size if free
///        +4        user data ...              (free block: next-free link)
///        +8        ...                        (free block: prev-free link)
///        +Size-4   footer word:  same encoding as header
///
/// The user pointer is Block+4 and the usable size is Size-8, so the
/// per-object overhead is the 8 bytes of boundary tags the paper's Table 6
/// discusses. Each sbrk region is fenced with allocated guard words so
/// coalescing never walks off a region's end.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOCSIM_ALLOC_COALESCINGALLOCATOR_H
#define ALLOCSIM_ALLOC_COALESCINGALLOCATOR_H

#include "alloc/Allocator.h"

#include <vector>

namespace allocsim {

/// Base for boundary-tag allocators with block splitting and coalescing.
class CoalescingAllocator : public Allocator {
public:
  /// Smallest legal block: header + two links + footer.
  static constexpr uint32_t MinBlockBytes = 16;

  /// Tag decoding, shared with the invariant walkers.
  static uint32_t tagSize(uint32_t Tag) { return Tag & ~3u; }
  static bool tagAllocated(uint32_t Tag) { return (Tag & 1) != 0; }

protected:
  CoalescingAllocator(SimHeap &Heap, CostModel &Cost);

  Addr doMalloc(uint32_t Size) final;
  void doFree(Addr Ptr) final;

  /// Finds a free block with size >= Need. Returns {block, blockSize} or
  /// {0, 0} if no fit exists.
  virtual std::pair<Addr, uint32_t> findFit(uint32_t Need) = 0;

  /// Links a free block (tags already written) into the free structure.
  virtual void insertFree(Addr Block, uint32_t Size) = 0;

  /// Notification that \p Block was just unlinked; \p Next is the list
  /// successor it had. FirstFit uses this to keep its rover valid.
  virtual void onUnlinked(Addr Block, Addr Next);

  /// Per-call instruction overhead beyond traced references; subclasses
  /// provide their calibrated constant.
  virtual uint64_t callOverhead() const = 0;

  /// Blocks are not split if the remainder would be smaller than this.
  /// FirstFit uses the paper-documented 24 bytes; GNU G++ uses a larger
  /// threshold so its segregated bins do not silt up with splinter blocks
  /// no surviving request class can consume.
  virtual uint32_t minSplitBytes() const = 0;

  /// --- list primitives (freelist links live in the blocks) -------------

  /// Unlinks \p Block from its doubly-linked list and returns its old
  /// successor. Calls onUnlinked.
  Addr unlinkBlock(Addr Block);

  /// Inserts \p Block immediately after list node \p Node (a block or a
  /// sentinel).
  void linkAfter(Addr Node, Addr Block);

  /// Creates an empty circular sentinel node in the static area and
  /// returns its address. Must be called during construction only.
  Addr makeSentinel();

  /// --- boundary-tag primitives ------------------------------------------

  uint32_t readHeader(Addr Block) {
    if (TagTouchesProbe)
      TagTouchesProbe->add();
    return load(Block);
  }
  uint32_t readFooterBefore(Addr Block) {
    if (TagTouchesProbe)
      TagTouchesProbe->add();
    return load(Block - 4);
  }
  void writeTags(Addr Block, uint32_t Size, bool Allocated);

  /// Sentinels were initialized with untraced pokes; annotate them for the
  /// shadow when one attaches.
  void onShadowAttached() override;

  /// Split/coalesce/tag-touch/heap-growth probes shared by both
  /// sequential-fit allocators.
  void onTelemetryAttached() override;

  /// Total block bytes needed to satisfy a request of \p Size user bytes.
  static uint32_t blockBytesFor(uint32_t Size) {
    uint32_t Need = ((Size + 3) & ~3u) + 8;
    return Need < MinBlockBytes ? MinBlockBytes : Need;
  }

private:
  /// Carves an allocation of \p Need bytes out of the free block \p Block
  /// (splitting if profitable) and returns the user pointer.
  Addr allocateFrom(Addr Block, uint32_t BlockSize, uint32_t Need);

  /// Obtains a new fencepost-guarded region of at least \p Need usable
  /// bytes from sbrk and inserts it as one free block. Returns false —
  /// with no state changed — when the heap capacity is exhausted.
  bool expandHeap(uint32_t Need);

  /// Host-side record of the sentinels created by makeSentinel, for shadow
  /// annotation.
  std::vector<Addr> Sentinels;

  /// Telemetry probes; null when telemetry is off.
  TelemetryCounter *SplitsProbe = nullptr;
  TelemetryCounter *CoalescesProbe = nullptr;
  TelemetryCounter *TagTouchesProbe = nullptr;
  TelemetryCounter *ExpandsProbe = nullptr;
  TelemetryCounter *ExpandBytesProbe = nullptr;
};

} // namespace allocsim

#endif // ALLOCSIM_ALLOC_COALESCINGALLOCATOR_H
