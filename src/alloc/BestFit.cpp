//===- alloc/BestFit.cpp - Best-fit sequential allocator ------------------===//

#include "alloc/BestFit.h"

using namespace allocsim;

BestFit::BestFit(SimHeap &AllocHeap, CostModel &AllocCost)
    : CoalescingAllocator(AllocHeap, AllocCost) {
  Sentinel = makeSentinel();
}

std::pair<Addr, uint32_t> BestFit::findFit(uint32_t Need) {
  // Exhaustive scan for the smallest sufficient block. An exact fit ends
  // the search early (nothing can beat it).
  Addr Best = 0;
  uint32_t BestSize = 0;
  for (Addr Node = load(Sentinel + 4); Node != Sentinel;
       Node = load(Node + 4)) {
    ++BlocksExamined;
    charge(3); // compare against request and current best.
    uint32_t Tag = readHeader(Node);
    assert(!tagAllocated(Tag) && "allocated block on freelist");
    uint32_t Size = tagSize(Tag);
    if (Size < Need)
      continue;
    if (Best == 0 || Size < BestSize) {
      Best = Node;
      BestSize = Size;
      if (Size == Need)
        break;
    }
  }
  return {Best, BestSize};
}

void BestFit::insertFree(Addr Block, uint32_t Size) {
  (void)Size;
  // LIFO at the list head; search order is irrelevant for best fit.
  linkAfter(Sentinel, Block);
}
